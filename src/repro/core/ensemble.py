"""K-fold booster ensemble — the student model used by UADB and variants.

Per the paper's setup (Sec. IV-A), three MLP boosters are trained, each on a
different 2/3 of the data (3-fold split), "to prevent the booster model from
overfitting the source model"; at inference the three outputs are averaged.
The fold networks and their Adam moment state persist across UADB
iterations, so each iteration continues training rather than restarting.
"""

from __future__ import annotations

import numpy as np

from repro.data.preprocessing import KFoldSplitter, StandardScaler
from repro.nn.losses import BCELoss, MSELoss
from repro.nn.network import build_mlp
from repro.nn.optimizers import Adam
from repro.nn.training import train
from repro.utils.rng import check_random_state, spawn_rng
from repro.utils.validation import check_array

__all__ = ["FoldEnsemble"]


class FoldEnsemble:
    """An ensemble of identical MLPs trained on complementary folds.

    Parameters
    ----------
    n_folds : int
        Number of boosters / folds (paper: 3).  Automatically reduced when
        the dataset has fewer samples than folds.
    hidden, n_layers : int
        MLP architecture (paper: 128 units, 3 layers).
    epochs, batch_size, lr :
        Per-round training hyper-parameters (paper: 10 epochs, 256, 1e-3).
    min_steps_per_round : int
        Floor on the number of gradient steps each round performs.  The
        paper's "10 epochs x batch 256" amounts to hundreds of Adam steps on
        its (large) datasets; on capped laptop-scale data the same epoch
        count would leave the booster untrained, so epochs are scaled up
        until at least this many steps run per round.
    first_round_steps : int
        Step floor for the *first* round only.  Distilling a skewed teacher
        score vector from random initialisation takes several hundred Adam
        steps to escape the constant-prediction plateau (low-contamination
        datasets have targets that are ~0 almost everywhere); later rounds
        merely track the label updates and stay cheap.
    loss : {'bce', 'mse'}
        Distillation loss.  Binary cross-entropy on the soft pseudo-labels
        is the default: with a sigmoid output its gradient w.r.t. the
        pre-activation is simply ``p - t``, so training does not stall when
        min-max-scaled teacher scores are compressed near 0 (the common
        regime on low-contamination data).  'mse' reproduces the effect of
        a plain regression loss for ablation.
    random_state : None, int, or Generator
    """

    def __init__(self, n_folds: int = 3, hidden: int = 128,
                 n_layers: int = 3, epochs: int = 10, batch_size: int = 256,
                 lr: float = 1e-3, min_steps_per_round: int = 100,
                 first_round_steps: int = 300, loss: str = "bce",
                 random_state=None):
        if n_folds < 1:
            raise ValueError(f"n_folds must be >= 1, got {n_folds}")
        if min_steps_per_round < 0:
            raise ValueError(
                f"min_steps_per_round must be >= 0, got {min_steps_per_round}"
            )
        if first_round_steps < 0:
            raise ValueError(
                f"first_round_steps must be >= 0, got {first_round_steps}"
            )
        if loss not in ("bce", "mse"):
            raise ValueError(f"loss must be 'bce' or 'mse', got {loss!r}")
        self.n_folds = n_folds
        self.hidden = hidden
        self.n_layers = n_layers
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.min_steps_per_round = min_steps_per_round
        self.first_round_steps = first_round_steps
        self.loss = loss
        self.random_state = random_state
        self._rounds_done = 0
        self._networks = None
        self._optimizers = None
        self._train_indices = None
        self._scaler = None
        self._rng = None

    @property
    def is_initialized(self) -> bool:
        return self._networks is not None

    def initialize(self, X) -> "FoldEnsemble":
        """Create the fold networks, optimizers, and feature scaler."""
        X = check_array(X, min_samples=2)
        self._rng = check_random_state(self.random_state)
        self._scaler = StandardScaler().fit(X)

        n = X.shape[0]
        n_folds = min(self.n_folds, n)
        if n_folds >= 2:
            splitter = KFoldSplitter(n_splits=n_folds,
                                     random_state=self._rng)
            self._train_indices = [tr for tr, _ in splitter.split(n)]
        else:
            self._train_indices = [np.arange(n)]

        net_rngs = spawn_rng(self._rng, len(self._train_indices))
        self._networks = [
            build_mlp(X.shape[1], hidden=self.hidden, n_layers=self.n_layers,
                      random_state=r)
            for r in net_rngs
        ]
        self._optimizers = [
            Adam(net.params, net.grads, lr=self.lr)
            for net in self._networks
        ]
        return self

    def train_round(self, X, pseudo_labels) -> list:
        """Train every fold network for ``epochs`` on its 2/3 split.

        Returns the per-fold :class:`~repro.nn.training.TrainingHistory`.
        """
        if not self.is_initialized:
            raise RuntimeError("call initialize(X) before train_round")
        X = check_array(X)
        y = np.asarray(pseudo_labels, dtype=np.float64).ravel()
        if y.shape[0] != X.shape[0]:
            raise ValueError("pseudo_labels length must match X")
        Z = self._scaler.transform(X)
        step_floor = (self.first_round_steps if self._rounds_done == 0
                      else self.min_steps_per_round)
        histories = []
        for net, opt, idx in zip(self._networks, self._optimizers,
                                 self._train_indices):
            steps_per_epoch = int(np.ceil(idx.size / self.batch_size))
            epochs = max(
                self.epochs,
                int(np.ceil(step_floor / steps_per_epoch)),
            )
            loss_fn = BCELoss() if self.loss == "bce" else MSELoss()
            histories.append(
                train(net, Z[idx], y[idx], epochs=epochs,
                      batch_size=self.batch_size, optimizer=opt,
                      loss=loss_fn, random_state=self._rng)
            )
        self._rounds_done += 1
        return histories

    def predict(self, X) -> np.ndarray:
        """Averaged fold-network scores in [0, 1] for arbitrary data."""
        return self.predict_per_fold(X).mean(axis=1)

    def predict_per_fold(self, X) -> np.ndarray:
        """Each fold network's scores as a column, shape (n, n_folds).

        The spread across columns is the "variance between different
        learners" that the paper's Fig 1 exploits: each network saw a
        different 2/3 of the data, and instances without a consistent
        structure (anomalies) make the learners disagree.
        """
        if not self.is_initialized:
            raise RuntimeError("call initialize(X) before predict")
        X = check_array(X)
        Z = self._scaler.transform(X)
        return np.column_stack(
            [net.forward(Z).ravel() for net in self._networks])
