"""K-fold booster ensemble — the student model used by UADB and variants.

Per the paper's setup (Sec. IV-A), three MLP boosters are trained, each on a
different 2/3 of the data (3-fold split), "to prevent the booster model from
overfitting the source model"; at inference the three outputs are averaged.
The fold networks and their Adam moment state persist across UADB
iterations, so each iteration continues training rather than restarting.

Two training engines are available:

* ``'batched'`` (default) — the fold networks' parameters are stacked into
  leading-axis tensors (:mod:`repro.nn.batched`) and every Adam step
  advances all folds at once through single broadcast ``matmul`` calls.
  This removes the per-fold Python loop from the hot path and is what makes
  large benchmark sweeps tractable.
* ``'sequential'`` — the original one-network-at-a-time loop, kept for
  parity testing and as an executable specification of the semantics.

Both engines consume the shared random stream in the same order (fold by
fold, epoch by epoch) and perform bit-for-bit identical arithmetic, so a
fixed ``random_state`` produces identical scores under either engine.
"""

from __future__ import annotations

import numpy as np

from repro.api.params import ParamsMixin
from repro.data.preprocessing import KFoldSplitter, StandardScaler
from repro.nn.batched import (
    BatchedAdam,
    BatchedBCELoss,
    BatchedMSELoss,
    link_networks,
    stack_networks,
)
from repro.nn.losses import BCELoss, MSELoss
from repro.nn.network import build_mlp
from repro.nn.optimizers import Adam
from repro.nn.training import TrainingHistory, iterate_minibatches, train
from repro.utils.rng import check_random_state, spawn_rng
from repro.utils.validation import check_array

__all__ = ["FoldEnsemble", "ENGINES"]

ENGINES = ("batched", "sequential")


def _array_fingerprint(X):
    """Cheap content fingerprint guarding the standardised-design cache.

    Shape, dtype, the first/last elements, and the element sum: one
    read-only pass, far cheaper than re-validating and re-scaling, yet it
    catches in-place mutations of the cached array (any edit that leaves
    the sum *and* both end elements bit-identical still slips through —
    the documented limit of this guard).  Non-ndarray inputs return
    ``None`` and are never served from the cache.
    """
    if not isinstance(X, np.ndarray) or X.size == 0:
        return None
    flat = X.flat
    return (X.shape, X.dtype.str, float(flat[0]), float(flat[X.size - 1]),
            float(X.sum()))


class FoldEnsemble(ParamsMixin):
    """An ensemble of identical MLPs trained on complementary folds.

    Parameters
    ----------
    n_folds : int
        Number of boosters / folds (paper: 3).  Automatically reduced when
        the dataset has fewer samples than folds.
    hidden, n_layers : int
        MLP architecture (paper: 128 units, 3 layers).
    epochs, batch_size, lr :
        Per-round training hyper-parameters (paper: 10 epochs, 256, 1e-3).
    min_steps_per_round : int
        Floor on the number of gradient steps each round performs.  The
        paper's "10 epochs x batch 256" amounts to hundreds of Adam steps on
        its (large) datasets; on capped laptop-scale data the same epoch
        count would leave the booster untrained, so epochs are scaled up
        until at least this many steps run per round.
    first_round_steps : int
        Step floor for the *first* round only.  Distilling a skewed teacher
        score vector from random initialisation takes several hundred Adam
        steps to escape the constant-prediction plateau (low-contamination
        datasets have targets that are ~0 almost everywhere); later rounds
        merely track the label updates and stay cheap.
    loss : {'bce', 'mse'}
        Distillation loss.  Binary cross-entropy on the soft pseudo-labels
        is the default: with a sigmoid output its gradient w.r.t. the
        pre-activation is simply ``p - t``, so training does not stall when
        min-max-scaled teacher scores are compressed near 0 (the common
        regime on low-contamination data).  'mse' reproduces the effect of
        a plain regression loss for ablation.
    engine : {'batched', 'sequential'}
        Training engine (see module docstring).  Both engines produce
        identical scores for a fixed ``random_state``; 'batched' is
        severalfold faster.
    dtype : {'float32', 'float64'} or None
        Training precision.  ``None`` (default) resolves through the
        active :class:`repro.runtime.RunContext` (its ``dtype`` field,
        else float32 — the historical default, matching the reference
        implementation's PyTorch precision, roughly doubling throughput
        on the small GEMMs that dominate booster training); float64 is
        available for numerically sensitive ablations.  Resolution is
        pinned at :meth:`initialize` so a fitted ensemble keeps its
        precision regardless of the context it later scores under.
    random_state : None, int, or Generator
        ``None`` resolves through the context's ``seed`` field (fresh
        entropy when that too is unset).

    Notes
    -----
    The ensemble caches the standardised design matrix for the most recent
    input, keyed on object identity plus a cheap content fingerprint:
    repeated ``train_round``/``predict`` calls with the *same array object*
    (the UADB iteration loop) skip the per-call validation + re-scaling of
    ``X``, while in-place mutations of that array are detected through the
    fingerprint (shape/dtype, end elements, and element sum) and refresh
    the cache.
    """

    def __init__(self, n_folds: int = 3, hidden: int = 128,
                 n_layers: int = 3, epochs: int = 10, batch_size: int = 256,
                 lr: float = 1e-3, min_steps_per_round: int = 100,
                 first_round_steps: int = 300, loss: str = "bce",
                 engine: str = "batched", dtype: str | None = None,
                 random_state=None):
        if n_folds < 1:
            raise ValueError(f"n_folds must be >= 1, got {n_folds}")
        if min_steps_per_round < 0:
            raise ValueError(
                f"min_steps_per_round must be >= 0, got {min_steps_per_round}"
            )
        if first_round_steps < 0:
            raise ValueError(
                f"first_round_steps must be >= 0, got {first_round_steps}"
            )
        if loss not in ("bce", "mse"):
            raise ValueError(f"loss must be 'bce' or 'mse', got {loss!r}")
        if engine not in ENGINES:
            raise ValueError(
                f"engine must be one of {ENGINES}, got {engine!r}"
            )
        if dtype is not None and str(dtype) not in ("float32", "float64"):
            raise ValueError(
                f"dtype must be 'float32', 'float64', or None, got {dtype!r}"
            )
        self.n_folds = n_folds
        self.hidden = hidden
        self.n_layers = n_layers
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.min_steps_per_round = min_steps_per_round
        self.first_round_steps = first_round_steps
        self.loss = loss
        self.engine = engine
        # Stored as the canonical *string*, not np.dtype: numpy's
        # ``np.dtype('float64') == None`` is True (None coerces to the
        # default dtype), which would make spec/params default-elision
        # silently drop an explicit float64 against the None default.
        self.dtype = None if dtype is None else str(np.dtype(dtype))
        self.random_state = random_state
        self._resolved_dtype = None
        self._rounds_done = 0
        self._networks = None
        self._optimizers = None
        self._train_indices = None
        self._scaler = None
        self._rng = None
        self._batched_net = None
        self._batched_opt = None
        self._cache_key = None
        self._cache_fp = None
        self._cache_Z = None

    @property
    def is_initialized(self) -> bool:
        return self._networks is not None

    @property
    def _dtype(self) -> np.dtype:
        """The training precision in effect: pinned at initialize, else
        resolved live (explicit param > RunContext.dtype > float32)."""
        if self._resolved_dtype is not None:
            return self._resolved_dtype
        if self.dtype is not None:
            return np.dtype(self.dtype)
        from repro.runtime import resolve_dtype

        return np.dtype(resolve_dtype())

    def initialize(self, X) -> "FoldEnsemble":
        """Create the fold networks, optimizers, and feature scaler."""
        from repro.runtime import resolve_seed

        arr = check_array(X, min_samples=2)
        self._resolved_dtype = self._dtype
        self._rng = check_random_state(resolve_seed(self.random_state))
        self._scaler = StandardScaler().fit(arr)

        n = arr.shape[0]
        n_folds = min(self.n_folds, n)
        if n_folds >= 2:
            splitter = KFoldSplitter(n_splits=n_folds,
                                     random_state=self._rng)
            self._train_indices = [tr for tr, _ in splitter.split(n)]
        else:
            self._train_indices = [np.arange(n)]

        net_rngs = spawn_rng(self._rng, len(self._train_indices))
        self._networks = [
            build_mlp(arr.shape[1], hidden=self.hidden,
                      n_layers=self.n_layers,
                      random_state=r).astype(self._dtype)
            for r in net_rngs
        ]
        if self.engine == "batched":
            self._batched_net = stack_networks(self._networks)
            # Per-fold networks view the stacked tensors: the ragged-step
            # fallback and external introspection always see live weights.
            link_networks(self._batched_net, self._networks)
            self._batched_opt = BatchedAdam(
                self._batched_net.params, self._batched_net.grads,
                n_models=len(self._networks), lr=self.lr,
                flat_params=self._batched_net.flat_params,
                flat_grads=self._batched_net.flat_grads,
            )
        else:
            self._optimizers = [
                Adam(net.params, net.grads, lr=self.lr)
                for net in self._networks
            ]
        self._cache_key = X
        self._cache_fp = _array_fingerprint(X)
        self._cache_Z = self._scaler.transform(arr).astype(self._dtype)
        return self

    def _standardized(self, X) -> np.ndarray:
        """Validated + standardised ``X``, cached by identity + fingerprint.

        Identity alone is unsafe: a caller that mutates the cached array in
        place would silently receive the stale standardised matrix.  The
        cheap content fingerprint (shape/dtype + end elements + sum)
        invalidates the cache on any such mutation it can observe.
        """
        if (X is self._cache_key and self._cache_Z is not None
                and self._cache_fp is not None
                and self._cache_fp == _array_fingerprint(X)):
            return self._cache_Z
        Z = self._scaler.transform(check_array(X)).astype(self._dtype)
        self._cache_key = X
        self._cache_fp = _array_fingerprint(X)
        self._cache_Z = Z
        return Z

    def _epoch_plan(self, n_train: int, step_floor: int) -> tuple:
        """(steps_per_epoch, epochs) for one fold, honouring the floor."""
        steps_per_epoch = int(np.ceil(n_train / self.batch_size))
        epochs = max(
            self.epochs,
            int(np.ceil(step_floor / steps_per_epoch)),
        )
        return steps_per_epoch, epochs

    def train_round(self, X, pseudo_labels) -> list:
        """Train every fold network for ``epochs`` on its 2/3 split.

        Returns the per-fold :class:`~repro.nn.training.TrainingHistory`.
        Under the batched engine all folds advance together, one stacked
        Adam step at a time; the histories are identical either way.
        """
        if not self.is_initialized:
            raise RuntimeError("call initialize(X) before train_round")
        Z = self._standardized(X)
        y = np.asarray(pseudo_labels, dtype=np.float64).ravel()
        if y.shape[0] != Z.shape[0]:
            raise ValueError("pseudo_labels length must match X")
        step_floor = (self.first_round_steps if self._rounds_done == 0
                      else self.min_steps_per_round)
        if self.engine == "batched":
            histories = self._train_round_batched(Z, y, step_floor)
        else:
            histories = self._train_round_sequential(Z, y, step_floor)
        self._rounds_done += 1
        return histories

    def _train_round_sequential(self, Z: np.ndarray, y: np.ndarray,
                                step_floor: int) -> list:
        """Original per-fold loop — the parity reference."""
        histories = []
        for net, opt, idx in zip(self._networks, self._optimizers,
                                 self._train_indices):
            _, epochs = self._epoch_plan(idx.size, step_floor)
            loss_fn = BCELoss() if self.loss == "bce" else MSELoss()
            histories.append(
                train(net, Z[idx], y[idx], epochs=epochs,
                      batch_size=self.batch_size, optimizer=opt,
                      loss=loss_fn, random_state=self._rng)
            )
        return histories

    def _train_round_batched(self, Z: np.ndarray, y: np.ndarray,
                             step_floor: int) -> list:
        """One stacked Adam step per minibatch across all folds at once.

        The batch schedule is drawn up front, fold by fold, consuming the
        shared rng exactly as the sequential loop would; execution then
        interleaves the folds' steps.  Steps whose per-fold batches all
        have the same size — every full-width batch, i.e. the bulk of the
        schedule — run as single stacked tensor ops.  Ragged tail steps
        (uneven last batches, folds whose rounds are shorter) fall back to
        the per-fold 2-d layers, which share storage with the stacked
        tensors, so both paths stay bit-for-bit identical to the
        sequential engine.
        """
        K = len(self._train_indices)
        # Per-fold batch schedule as global row indices, epoch-major.
        schedules, spes = [], []
        for idx in self._train_indices:
            spe, epochs = self._epoch_plan(idx.size, step_floor)
            batches = []
            for _ in range(epochs):
                for local in iterate_minibatches(idx.size, self.batch_size,
                                                 self._rng):
                    batches.append(idx[local])
            schedules.append(batches)
            spes.append(spe)

        if self.loss == "bce":
            stacked_loss = BatchedBCELoss()
            fold_loss_fns = [BCELoss() for _ in range(K)]
        else:
            stacked_loss = BatchedMSELoss()
            fold_loss_fns = [MSELoss() for _ in range(K)]
        y_col = y.astype(self._dtype)[:, None]
        fold_losses = [[] for _ in range(K)]
        total_steps = max(len(s) for s in schedules)
        for t in range(total_steps):
            step_batches = [s[t] if t < len(s) else None for s in schedules]
            counts = {len(b) for b in step_batches if b is not None}
            if len(counts) == 1 and all(b is not None for b in step_batches):
                rows = np.stack(step_batches)
                pred = self._batched_net.forward(Z[rows])
                losses = stacked_loss.forward(pred, y_col[rows])
                self._batched_net.backward(stacked_loss.backward())
                self._batched_opt.step()
                for k, val in enumerate(losses):
                    fold_losses[k].append(val)
            else:
                active = [b is not None for b in step_batches]
                for k, batch in enumerate(step_batches):
                    if batch is None:
                        continue
                    net, loss_fn = self._networks[k], fold_loss_fns[k]
                    pred = net.forward(Z[batch])
                    fold_losses[k].append(
                        loss_fn.forward(pred, y_col[batch]))
                    net.backward(loss_fn.backward())
                    self._copy_fold_grads(k)
                self._batched_opt.step(active=active)

        histories = []
        for k in range(K):
            history = TrainingHistory()
            batch_losses = fold_losses[k]
            for start in range(0, len(batch_losses), spes[k]):
                history.epoch_losses.append(
                    float(np.mean(batch_losses[start:start + spes[k]]))
                )
            histories.append(history)
        return histories

    def _copy_fold_grads(self, k: int) -> None:
        """Write fold ``k``'s per-layer gradients into the stacked buffers."""
        for fold_grad, stacked_grad in zip(self._networks[k].grads,
                                           self._batched_net.grads):
            stacked_grad[k] = fold_grad.reshape(stacked_grad[k].shape)

    def predict(self, X) -> np.ndarray:
        """Averaged fold-network scores in [0, 1] for arbitrary data."""
        return self.predict_per_fold(X).mean(axis=1)

    def predict_per_fold(self, X) -> np.ndarray:
        """Each fold network's scores as a column, shape (n, n_folds).

        The spread across columns is the "variance between different
        learners" that the paper's Fig 1 exploits: each network saw a
        different 2/3 of the data, and instances without a consistent
        structure (anomalies) make the learners disagree.
        """
        if not self.is_initialized:
            raise RuntimeError("call initialize(X) before predict")
        Z = self._standardized(X)
        if self.engine == "batched":
            # One broadcast forward scores every fold: (K, n, 1) -> (n, K).
            out = self._batched_net.forward(Z[None, :, :])
            self._batched_net.release_caches()
            return out[:, :, 0].T
        scores = np.column_stack(
            [net.forward(Z).ravel() for net in self._networks])
        for net in self._networks:
            net.release_caches()
        return scores

    # -- persistence ------------------------------------------------------
    def get_state(self) -> dict:
        """Full training state for :mod:`repro.serving.artifacts`.

        Captures the constructor configuration, the fold networks (weights
        only — under the batched engine these are views into the stacked
        tensors, which the codec copies out), the optimizer moment state of
        whichever engine is active, the fold split, the feature scaler, and
        the shared random stream, so a restored ensemble both *scores*
        bit-identically and *continues training* bit-identically.
        """
        return {
            "config": {
                "n_folds": self.n_folds,
                "hidden": self.hidden,
                "n_layers": self.n_layers,
                "epochs": self.epochs,
                "batch_size": self.batch_size,
                "lr": self.lr,
                "min_steps_per_round": self.min_steps_per_round,
                "first_round_steps": self.first_round_steps,
                "loss": self.loss,
                "engine": self.engine,
                "dtype": None if self.dtype is None else str(self.dtype),
                "random_state": self.random_state,
            },
            # The precision pinned at initialize: a restored ensemble
            # must keep the dtype it trained under, not re-resolve it
            # from whatever RunContext is active at load time.
            "resolved_dtype": (None if self._resolved_dtype is None
                               else str(self._resolved_dtype)),
            "rounds_done": self._rounds_done,
            "train_indices": self._train_indices,
            "scaler": self._scaler,
            "rng": self._rng,
            "networks": self._networks,
            "optimizers": (None if self._optimizers is None
                           else [opt.get_state()
                                 for opt in self._optimizers]),
            "batched_opt": (None if self._batched_opt is None
                            else self._batched_opt.get_state()),
        }

    def set_state(self, state: dict) -> "FoldEnsemble":
        """Restore an ensemble from :meth:`get_state` output.

        Re-validates the configuration through ``__init__``, then rebuilds
        the engine-specific machinery: under the batched engine the fold
        networks are re-stacked into fresh fused buffers and re-linked, and
        the stacked optimizer's moments are copied back in.
        """
        self.__init__(**state["config"])
        resolved_dtype = state.get("resolved_dtype")
        if resolved_dtype is not None:
            self._resolved_dtype = np.dtype(resolved_dtype)
        elif self.dtype is not None:
            # Pre-runtime states carried an always-explicit config dtype.
            self._resolved_dtype = self.dtype
        self._rounds_done = int(state["rounds_done"])
        self._train_indices = state["train_indices"]
        self._scaler = state["scaler"]
        self._rng = state["rng"]
        self._networks = state["networks"]
        if self._networks is None:
            return self
        if self.engine == "batched":
            self._batched_net = stack_networks(self._networks)
            link_networks(self._batched_net, self._networks)
            self._batched_opt = BatchedAdam(
                self._batched_net.params, self._batched_net.grads,
                n_models=len(self._networks), lr=self.lr,
                flat_params=self._batched_net.flat_params,
                flat_grads=self._batched_net.flat_grads,
            )
            if state["batched_opt"] is not None:
                self._batched_opt.set_state(state["batched_opt"])
        else:
            self._optimizers = [
                Adam(net.params, net.grads, lr=self.lr)
                for net in self._networks
            ]
            if state["optimizers"] is not None:
                for opt, opt_state in zip(self._optimizers,
                                          state["optimizers"]):
                    opt.set_state(opt_state)
        return self
