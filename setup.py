"""Setup shim for environments without the ``wheel`` package.

Metadata lives in pyproject.toml; this file lets ``pip install -e .`` fall
back to the legacy ``setup.py develop`` code path when PEP 660 editable
builds are unavailable (no ``bdist_wheel`` command offline).
"""

from setuptools import setup

setup()
