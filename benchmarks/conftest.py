"""Shared benchmark configuration.

Every benchmark regenerates one table or figure of the paper and prints it
in textual form.  By default the sweeps run on a reduced-but-representative
configuration (a 12-dataset core, capped sizes) so the whole suite finishes
on a laptop; set ``REPRO_FULL_BENCH=1`` to sweep all 84 datasets with the
paper's settings.

The main detector x dataset sweep is computed once per session and shared
by the Table IV / Fig 6 / Fig 7 / Fig 10 benchmarks.  Set
``REPRO_BENCH_JOBS=<n>`` to fan its cells out over ``n`` worker processes
and ``REPRO_BENCH_CACHE=<dir>`` to reuse per-cell results across sessions
— both resolve inside :func:`repro.experiments.harness.run_grid` through
the :class:`repro.runtime.RunContext` environment layer (results are
identical either way), so this module no longer reads them itself.
"""

import os

import pytest

from repro.detectors.registry import DETECTOR_NAMES
from repro.experiments.harness import DEFAULT_BENCH_DATASETS, run_grid

FULL = os.environ.get("REPRO_FULL_BENCH", "") == "1"

# Reduced core: 12 heterogeneous datasets mixing strong- and weak-teacher
# cells (see harness.DEFAULT_BENCH_DATASETS for the rationale).
CORE_DATASETS = (
    "abalone", "annthyroid", "cardio", "fault", "glass", "letter",
    "mammography", "musk", "Parkinson", "satellite", "SpamBase", "thyroid",
) if not FULL else None  # None -> all 84 via registry default

MAX_SAMPLES = 1200 if FULL else 400
MAX_FEATURES = 64 if FULL else 24
N_ITERATIONS = 10
SEEDS = (0,) if not FULL else (0, 1, 2)


def bench_datasets():
    if CORE_DATASETS is not None:
        return CORE_DATASETS
    from repro.data.registry import DATASET_NAMES
    return DATASET_NAMES


@pytest.fixture(scope="session")
def main_sweep():
    """The detector x dataset sweep behind Table IV, Figs 6/7/10."""
    return run_grid(
        detectors=DETECTOR_NAMES,
        datasets=bench_datasets(),
        seeds=SEEDS,
        n_iterations=N_ITERATIONS,
        max_samples=MAX_SAMPLES,
        max_features=MAX_FEATURES,
    )


def report(text: str) -> None:
    """Print a reproduced table/figure with visible delimiters."""
    print()
    print("=" * 78)
    print(text)
    print("=" * 78)
