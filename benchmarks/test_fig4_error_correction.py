"""Fig 4: per-case booster trajectories — UADB vs static distillation.

Paper shape: without error correction the student simply mimics the teacher
(including its errors); UADB gradually raises FN scores and lowers FP
scores while keeping TP high and TN low.
"""

from benchmarks.conftest import report
from repro.data.synthetic import make_anomaly_dataset
from repro.experiments.figures import fig4_case_trajectories
from repro.experiments.reporting import format_table


def test_fig4_error_correction(benchmark):
    dataset = make_anomaly_dataset("local", n_inliers=450, n_anomalies=50,
                                   random_state=0)
    out = benchmark.pedantic(
        fig4_case_trajectories,
        kwargs={"dataset": dataset, "detector": "IForest",
                "n_iterations": 10, "seed": 0},
        rounds=1, iterations=1)

    rows = []
    for case, info in out["cases"].items():
        rows.append([case, f"{info['initial']:.3f}",
                     f"{info['uadb'][-1]:.3f}",
                     f"{info['static'][-1]:.3f}"])
    report(format_table(
        ["Case", "Initial pseudo-label", "UADB final", "Static final"],
        rows, title="[Fig 4] booster score per case after 10 iterations"))

    cases = out["cases"]
    # TP stays high, TN stays low under UADB.
    if "TP" in cases:
        assert cases["TP"]["uadb"][-1] > 0.5
    if "TN" in cases:
        assert cases["TN"]["uadb"][-1] < 0.5
    # Error-correction direction: the FN trajectory must end above the
    # static student's, and the FP trajectory at or below it.
    if "FN" in cases:
        assert (cases["FN"]["uadb"][-1]
                >= cases["FN"]["static"][-1] - 0.05)
