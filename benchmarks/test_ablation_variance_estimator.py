"""Ablation: cross-fold vs averaged-student variance estimation
(DESIGN.md calibration note 3).

Algorithm 1 computes the per-instance variance over the pseudo-label
history plus the student output.  Using each fold learner's prediction as
its own column preserves the cross-learner disagreement (the paper's Fig 1
signal); averaging the folds first cancels most of it.  This bench measures
how much anomaly signal — corr(variance, ground truth) — each estimator
retains after one distillation round.
"""

import numpy as np

from benchmarks.conftest import report
from repro.core.ensemble import FoldEnsemble
from repro.core.variance import variance_history
from repro.data.preprocessing import StandardScaler
from repro.data.registry import load_dataset
from repro.detectors.registry import make_detector
from repro.experiments.reporting import format_table

DATASETS = ("cardio", "glass", "letter", "Ionosphere", "Pima", "fault")


def test_ablation_variance_estimator(benchmark):
    def run():
        out = {}
        for name in DATASETS:
            ds = load_dataset(name, max_samples=400, max_features=24)
            X = StandardScaler().fit_transform(ds.X)
            teacher = make_detector("IForest", random_state=0).fit(X)
            scores = teacher.fit_scores()
            ens = FoldEnsemble(random_state=0).initialize(X)
            ens.train_round(X, scores)
            per_fold = ens.predict_per_fold(X)
            labels = scores[:, None]
            v_folds = variance_history(labels, per_fold)
            v_mean = variance_history(labels, per_fold.mean(axis=1))
            out[name] = {
                "per_fold": float(np.corrcoef(v_folds, ds.y)[0, 1]),
                "averaged": float(np.corrcoef(v_mean, ds.y)[0, 1]),
            }
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[name, f"{c['per_fold']:+.3f}", f"{c['averaged']:+.3f}"]
            for name, c in out.items()]
    report(format_table(
        ["Dataset", "corr(v, y) per-fold columns", "... averaged student"],
        rows,
        title="[Ablation] variance estimator anomaly signal"))

    per_fold_mean = np.mean([c["per_fold"] for c in out.values()])
    averaged_mean = np.mean([c["averaged"] for c in out.values()])
    # The cross-fold estimator must carry at least as much anomaly signal
    # on average.
    assert per_fold_mean >= averaged_mean - 0.02
    # And the signal itself must be positive (anomalies vary more).
    assert per_fold_mean > 0.0
