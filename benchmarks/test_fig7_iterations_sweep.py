"""Fig 7: booster AUCROC as a function of the number of UADB iterations.

Paper shape: performance rises during the first iterations and stabilises
by T ~ 10 for most models, which is why the paper fixes T = 10.
"""

import numpy as np

from benchmarks.conftest import report
from repro.experiments.figures import fig7_iteration_curves
from repro.experiments.reporting import format_fig7


def test_fig7_iterations_sweep(benchmark, main_sweep):
    curves = benchmark.pedantic(
        fig7_iteration_curves, args=(main_sweep,), rounds=1, iterations=1)
    report(format_fig7(curves))

    assert len(curves) >= 10  # all (or nearly all) of the 14 models
    for detector, c in curves.items():
        series = np.asarray(c["per_iteration_auc"])
        assert series.size >= 5
        # Stabilisation: the last two iterations differ by little.
        assert abs(series[-1] - series[-2]) < 0.05
        # The curve must not collapse over iterations.
        assert series[-1] >= series[0] - 0.05
