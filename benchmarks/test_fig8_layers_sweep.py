"""Fig 8: booster AUCROC vs number of MLP layers.

Paper shape: UADB is stable w.r.t. booster depth — curves for 2-5 layers
are nearly flat.
"""

import numpy as np

from benchmarks.conftest import report
from repro.experiments.figures import fig8_layer_sweep
from repro.experiments.reporting import format_table

LAYERS = (2, 3, 4, 5)
MODELS = ("IForest", "HBOS", "LOF")
DATASETS = ("cardio", "glass", "thyroid")


def test_fig8_layers_sweep(benchmark):
    out = benchmark.pedantic(
        fig8_layer_sweep,
        kwargs={"layers": LAYERS, "detectors": MODELS,
                "datasets": DATASETS, "n_iterations": 5,
                "max_samples": 400, "max_features": 24},
        rounds=1, iterations=1)

    rows = [[str(n)] + [f"{out[n][m]:.3f}" for m in MODELS]
            for n in LAYERS]
    report(format_table(["MLP layers"] + list(MODELS), rows,
                        title="[Fig 8] booster AUCROC vs MLP depth"))

    # Stability: per model, the spread across depths is small.
    for model in MODELS:
        values = np.array([out[n][model] for n in LAYERS])
        assert values.max() - values.min() < 0.12, (
            f"{model} unstable across depths: {values}")
