"""Fig 2: relative average variance gap across the 84-dataset benchmark.

Paper shape: anomalies have higher average variance than normal samples on
~85% (71/84) of datasets.
"""

import os

from benchmarks.conftest import FULL, MAX_FEATURES, report
from repro.data.registry import DATASET_NAMES
from repro.experiments.figures import fig2_variance_gap
from repro.experiments.reporting import format_fig2

# The imitation protocol is cheap, so even the default configuration sweeps
# a large share of the registry (all 84 under REPRO_FULL_BENCH).
NAMES = DATASET_NAMES if FULL else DATASET_NAMES[::2]


def test_fig2_variance_gap(benchmark):
    out = benchmark.pedantic(
        fig2_variance_gap,
        kwargs={"dataset_names": NAMES, "max_samples": 400,
                "max_features": MAX_FEATURES},
        rounds=1, iterations=1)
    report(format_fig2(out))

    # Paper: 71/84 = 85% of datasets show the negative gap.  We require a
    # clear majority on the stand-ins.
    assert out["fraction_negative"] >= 0.6
