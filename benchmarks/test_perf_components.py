"""Micro-benchmarks of the core computational components.

Not tied to a specific paper table; these keep the substrate honest about
cost (detector fits, booster rounds, variance updates) and give
pytest-benchmark real multi-round timing data.

The neighbor-kernel section additionally enforces wall-clock floors for
the PR-4 shared backend (vectorized ABOD/COF/SOD scoring >= 2x their
reference loops; the warm detector bank >= 2x the uncached reference
baseline).  Refreshing the checked-in machine-readable ``BENCH_PR4.json``
snapshot is **opt-in** — set ``REPRO_BENCH_WRITE=1`` on a quiet machine —
because local timings drift +-20% run to run and an unconditional write
churned the file on every benchmark invocation.
"""

import json
import os
import platform
import time
from pathlib import Path

import numpy as np
import pytest

import repro.kernels as kernels
from repro.core.ensemble import FoldEnsemble
from repro.core.variance import variance_history
from repro.data.preprocessing import StandardScaler
from repro.data.synthetic import make_anomaly_dataset
from repro.detectors.registry import ALL_DETECTOR_NAMES, make_detector


@pytest.fixture(scope="module")
def data():
    ds = make_anomaly_dataset("local", n_inliers=450, n_anomalies=50,
                              n_features=16, random_state=0)
    return StandardScaler().fit_transform(ds.X)


@pytest.mark.parametrize("name", ["IForest", "HBOS", "LOF", "KNN", "ECOD",
                                  "GMM", "COPOD", "LODA"])
def test_detector_fit_speed(benchmark, data, name):
    def fit():
        return make_detector(name, random_state=0).fit(data)

    detector = benchmark(fit)
    assert detector.decision_scores_.shape == (500,)


def test_booster_round_speed(benchmark, data):
    ens = FoldEnsemble(min_steps_per_round=50, first_round_steps=50,
                       random_state=0).initialize(data)
    pseudo = np.random.default_rng(0).uniform(size=data.shape[0])
    benchmark(ens.train_round, data, pseudo)


def test_variance_update_speed(benchmark):
    rng = np.random.default_rng(0)
    labels = rng.uniform(size=(5000, 11))
    student = rng.uniform(size=(5000, 3))
    result = benchmark(variance_history, labels, student)
    assert result.shape == (5000,)


# -- shared neighbor-kernel backend (PR 4) ---------------------------------

BENCH_N = 2000
BENCH_D = 16
SNAPSHOT = Path(__file__).resolve().parent.parent / "BENCH_PR4.json"


@pytest.fixture(scope="module")
def bank_data():
    """The n=2000 matrix behind the PR-4 acceptance measurements."""
    ds = make_anomaly_dataset("local", n_inliers=BENCH_N - 200,
                              n_anomalies=200, n_features=BENCH_D,
                              random_state=0)
    return StandardScaler().fit_transform(ds.X)


def _best_of(fn, repeats: int = 3) -> float:
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def pr4_snapshot():
    """Accumulates section results; written to BENCH_PR4.json at teardown."""
    snapshot = {
        "benchmark": "PR4 shared neighbor-kernel backend",
        "note": "baseline_s disables the neighbor cache and uses the "
                "engine='reference' loops in-process; it still runs the "
                "PR-4 selection kernel, so it *understates* the speedup "
                "over the real pre-PR main (paired runs on this box "
                "measured pre-PR main at 2.65-2.84s for the bank pass, "
                "vs ~2.4s for this baseline).",
        "config": {"n": BENCH_N, "d": BENCH_D,
                   "threads": kernels.get_num_threads()},
        "env": {"python": platform.python_version(),
                "numpy": np.__version__,
                "cpu_count": os.cpu_count()},
    }
    yield snapshot
    # Replacing the checked-in snapshot is opt-in (REPRO_BENCH_WRITE=1):
    # timings drift +-20% between runs, so default runs must not churn
    # the file.  Even then, only a run of every section may write — a
    # selective run (one floor test, -x after a failure) would otherwise
    # clobber it with a partial document.
    sections = {"engine_scoring", "neighbor_detector_fits", "bank_pass"}
    if os.environ.get("REPRO_BENCH_WRITE", "") != "1":
        print(f"\n{SNAPSHOT.name} left untouched "
              f"(set REPRO_BENCH_WRITE=1 to refresh the snapshot)")
    elif sections <= snapshot.keys():
        SNAPSHOT.write_text(json.dumps(snapshot, indent=1) + "\n")
        print(f"\nwrote {SNAPSHOT}")
    else:
        print(f"\n{SNAPSHOT.name} left untouched "
              f"(missing sections: {sorted(sections - snapshot.keys())})")


@pytest.mark.parametrize("name", ["ABOD", "COF", "SOD", "KDE"])
def test_neighbor_detector_fit_speed(benchmark, bank_data, name):
    """pytest-benchmark timing of the vectorized fits (n=2000)."""
    X = bank_data

    def fit():
        return make_detector(name, random_state=0).fit(X)

    detector = benchmark(fit)
    assert detector.decision_scores_.shape == (BENCH_N,)


def test_vectorized_engine_floor(bank_data, pr4_snapshot):
    """Vectorized ABOD/COF/SOD scoring must stay >= 2x the reference
    loops (same warm k-NN graph, so the comparison is pure scoring) and
    bit-identical to them."""
    X = bank_data
    results = {}
    kernels.clear_cache()
    kernels.cached_kneighbors(X, X, 20, exclude_self=True)  # warm graph
    for name in ("ABOD", "COF", "SOD"):
        vec = make_detector(name)
        ref = make_detector(name, engine="reference")
        t_vec = _best_of(lambda: vec.fit(X))
        t_ref = _best_of(lambda: ref.fit(X))
        assert np.array_equal(vec.decision_scores_, ref.decision_scores_)
        speedup = t_ref / t_vec
        results[name] = {"vectorized_s": round(t_vec, 4),
                         "reference_s": round(t_ref, 4),
                         "speedup": round(speedup, 2)}
        print(f"{name}: vectorized {t_vec:.3f}s vs reference {t_ref:.3f}s "
              f"({speedup:.1f}x)")
    kernels.clear_cache()
    floor = min(r["speedup"] for r in results.values())
    assert floor >= 2.0, f"vectorized scoring floor violated: {results}"
    # Recorded only after the floor holds: a failing run must not
    # replace the checked-in snapshot with sub-floor numbers.
    pr4_snapshot["engine_scoring"] = results


def test_detector_bank_pass_floor(bank_data, pr4_snapshot):
    """A full 20-detector bank pass vs the uncached reference baseline.

    The baseline disables the neighbor cache and selects the
    ``engine="reference"`` loops — the pre-PR-4 behaviour, kernel for
    kernel.  Cold = first pass on a dataset (one graph build); warm =
    repeat visits, the steady state of multi-seed/multi-detector sweeps.
    The floor is on the warm pass, which shared runners time reliably;
    the cold ratio is recorded in the snapshot.
    """
    X = bank_data
    reference_engines = {"ABOD", "COF", "SOD"}

    def bank(engine_override: bool) -> None:
        for name in ALL_DETECTOR_NAMES:
            kwargs = {"engine": "reference"} \
                if engine_override and name in reference_engines else {}
            make_detector(name, random_state=0, **kwargs).fit(X)

    neighbor_detectors = ("KNN", "LOF", "COF", "SOD", "ABOD")

    def neighbor_fits(engine_override: bool) -> None:
        for name in neighbor_detectors:
            kwargs = {"engine": "reference"} \
                if engine_override and name in reference_engines else {}
            make_detector(name, random_state=0, **kwargs).fit(X)

    kernels.neighbor_cache.enabled = False
    try:
        kernels.clear_cache()
        t_baseline = _best_of(lambda: bank(engine_override=True), 2)
        t_nb_baseline = _best_of(lambda: neighbor_fits(True), 2)
    finally:
        kernels.neighbor_cache.enabled = True
    kernels.clear_cache()
    t_nb = _best_of(lambda: (kernels.clear_cache(),
                             neighbor_fits(False)), 2)
    nb_fits = {
        "detectors": list(neighbor_detectors),
        "baseline_s": round(t_nb_baseline, 3),
        "shared_kernel_s": round(t_nb, 3),
        "speedup": round(t_nb_baseline / t_nb, 2),
    }
    print(f"5 neighbor-detector fits: baseline {t_nb_baseline:.2f}s, "
          f"shared kernel {t_nb:.2f}s ({t_nb_baseline / t_nb:.1f}x)")

    kernels.clear_cache()
    t_cold = _best_of(lambda: (kernels.clear_cache(),
                               bank(engine_override=False)), 2)
    t_warm = _best_of(lambda: bank(engine_override=False), 2)
    stats = kernels.cache_stats()

    cold_speedup = t_baseline / t_cold
    warm_speedup = t_baseline / t_warm
    bank_pass = {
        "detectors": len(ALL_DETECTOR_NAMES),
        "baseline_s": round(t_baseline, 3),
        "cold_s": round(t_cold, 3),
        "warm_s": round(t_warm, 3),
        "cold_speedup": round(cold_speedup, 2),
        "warm_speedup": round(warm_speedup, 2),
        "cache_stats": stats,
    }
    print(f"bank pass: baseline {t_baseline:.2f}s, cold {t_cold:.2f}s "
          f"({cold_speedup:.1f}x), warm {t_warm:.2f}s "
          f"({warm_speedup:.1f}x)")
    kernels.clear_cache()
    assert warm_speedup >= 2.0, bank_pass
    assert cold_speedup >= 1.3, bank_pass
    assert nb_fits["speedup"] >= 3.0, nb_fits
    # Recorded only after every floor holds: a failing run must not
    # replace the checked-in snapshot with sub-floor numbers.
    pr4_snapshot["neighbor_detector_fits"] = nb_fits
    pr4_snapshot["bank_pass"] = bank_pass
