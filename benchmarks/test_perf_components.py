"""Micro-benchmarks of the core computational components.

Not tied to a specific paper table; these keep the substrate honest about
cost (detector fits, booster rounds, variance updates) and give
pytest-benchmark real multi-round timing data.
"""

import numpy as np
import pytest

from repro.core.ensemble import FoldEnsemble
from repro.core.variance import variance_history
from repro.data.preprocessing import StandardScaler
from repro.data.synthetic import make_anomaly_dataset
from repro.detectors.registry import make_detector


@pytest.fixture(scope="module")
def data():
    ds = make_anomaly_dataset("local", n_inliers=450, n_anomalies=50,
                              n_features=16, random_state=0)
    return StandardScaler().fit_transform(ds.X)


@pytest.mark.parametrize("name", ["IForest", "HBOS", "LOF", "KNN", "ECOD",
                                  "GMM", "COPOD", "LODA"])
def test_detector_fit_speed(benchmark, data, name):
    def fit():
        return make_detector(name, random_state=0).fit(data)

    detector = benchmark(fit)
    assert detector.decision_scores_.shape == (500,)


def test_booster_round_speed(benchmark, data):
    ens = FoldEnsemble(min_steps_per_round=50, first_round_steps=50,
                       random_state=0).initialize(data)
    pseudo = np.random.default_rng(0).uniform(size=data.shape[0])
    benchmark(ens.train_round, data, pseudo)


def test_variance_update_speed(benchmark):
    rng = np.random.default_rng(0)
    labels = rng.uniform(size=(5000, 11))
    student = rng.uniform(size=(5000, 3))
    result = benchmark(variance_history, labels, student)
    assert result.shape == (5000,)
