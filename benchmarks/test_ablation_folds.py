"""Ablation: booster fold count (paper uses a 3-fold CV ensemble).

The paper trains 3 boosters on complementary 2/3 splits "to prevent the
booster model from overfitting the source model".  This bench compares
1 / 3 / 5 folds on a handful of datasets.
"""

import numpy as np

from benchmarks.conftest import report
from repro.core.booster import UADBooster
from repro.data.preprocessing import StandardScaler
from repro.data.registry import load_dataset
from repro.detectors.registry import make_detector
from repro.experiments.reporting import format_table
from repro.metrics.ranking import auc_roc

DATASETS = ("cardio", "fault", "satellite")
FOLDS = (1, 3, 5)


def test_ablation_fold_count(benchmark):
    def run():
        out = {}
        for name in DATASETS:
            ds = load_dataset(name, max_samples=400, max_features=24)
            X = StandardScaler().fit_transform(ds.X)
            teacher = make_detector("IForest", random_state=0).fit(X)
            scores = teacher.fit_scores()
            row = {"teacher": auc_roc(ds.y, scores)}
            for k in FOLDS:
                booster = UADBooster(n_iterations=5, n_folds=k,
                                     record_history=False, random_state=0)
                booster.fit(X, scores)
                row[f"folds_{k}"] = auc_roc(ds.y, booster.scores_)
            out[name] = row
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[name, f"{row['teacher']:.3f}"]
            + [f"{row[f'folds_{k}']:.3f}" for k in FOLDS]
            for name, row in out.items()]
    report(format_table(
        ["Dataset", "Teacher"] + [f"{k} folds" for k in FOLDS], rows,
        title="[Ablation] booster AUCROC vs fold count (teacher=IForest)"))

    # Structural sanity: every configuration yields a valid AUC and the
    # multi-fold ensembles do not collapse relative to the single model.
    for row in out.values():
        for k in FOLDS:
            assert 0.0 <= row[f"folds_{k}"] <= 1.0
        assert row["folds_3"] >= row["folds_1"] - 0.1
