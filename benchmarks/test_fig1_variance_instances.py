"""Fig 1: per-instance variance of normal vs abnormal samples.

Paper shape: on glass / musk / PageBlocks / thyroid, anomalies consistently
show higher teacher-imitator variance than inliers.
"""

from benchmarks.conftest import MAX_FEATURES, MAX_SAMPLES, report
from repro.experiments.figures import fig1_instance_variance
from repro.experiments.reporting import format_table

DATASETS = ("glass", "musk", "PageBlocks", "thyroid")


def test_fig1_variance_instances(benchmark):
    out = benchmark.pedantic(
        fig1_instance_variance,
        kwargs={"dataset_names": DATASETS, "max_samples": MAX_SAMPLES,
                "max_features": MAX_FEATURES},
        rounds=1, iterations=1)

    rows = [[name, f"{cell['mean_normal']:.5f}",
             f"{cell['mean_abnormal']:.5f}",
             "anomalies" if cell["mean_abnormal"] > cell["mean_normal"]
             else "normals"]
            for name, cell in out.items()]
    report(format_table(
        ["Dataset", "Mean var (normal)", "Mean var (abnormal)",
         "Higher variance"], rows,
        title="[Fig 1] teacher-imitator variance by ground truth"))

    higher = sum(cell["mean_abnormal"] > cell["mean_normal"]
                 for cell in out.values())
    # Paper: anomalies have higher variance on all four showcase datasets;
    # we require it on at least 3 of 4 (stand-in data).
    assert higher >= 3
