"""Fig 6: UADB's behaviour on datasets where the variance gap does NOT hold.

Paper shape: even on datasets where anomalies do not have higher average
variance, UADB still improves over 12 of 14 UAD models on more than half of
those datasets.
"""

from benchmarks.conftest import MAX_FEATURES, bench_datasets, report
from repro.experiments.figures import fig2_variance_gap, fig6_no_gap_improvement
from repro.experiments.reporting import format_table


def test_fig6_no_gap_improvement(benchmark, main_sweep):
    gap_info = fig2_variance_gap(dataset_names=bench_datasets(),
                                 max_samples=400,
                                 max_features=MAX_FEATURES)
    out = benchmark.pedantic(
        fig6_no_gap_improvement, args=(main_sweep, gap_info),
        rounds=1, iterations=1)

    rows = [[det, f"{info['mean_improvement']:+.4f}",
             f"{info['n_improved']}/{info['n_datasets']}"]
            for det, info in out["per_detector"].items()]
    title = ("[Fig 6] booster improvement on no-variance-gap datasets: "
             + ", ".join(out["selected_datasets"]) if rows else
             "[Fig 6] no dataset without variance gap in this configuration")
    report(format_table(["Model", "Mean AUC improvement", "Improved"],
                        rows, title=title))

    # Structural check only: the subset selection and per-detector stats
    # are well-formed (the subset may legitimately be empty or tiny on the
    # reduced configuration).
    for info in out["per_detector"].values():
        assert 0 <= info["n_improved"] <= info["n_datasets"]
