"""Throughput guard: the 4-worker fleet must beat one service >= 2x.

What scales and why
-------------------
This box has one CPU core, so the fleet's win is **not** parallel
compute — it is aggregate cache capacity.  Under a mixed-model workload
(clients round-robining over ``N_MODELS`` models, more than one LRU cache
holds) a single :class:`ScoringService` reloads an artifact from disk on
nearly every request, while each fleet worker owns the shard consistent
hashing assigns it — small enough to stay warm — and answers from
memory.  The guard pins that mechanism, not just the stopwatch: the
single service must show cache *thrash* (misses >> capacity) and the
fleet workers must show cache *hits*, and every score returned by either
tier must be exactly equal, because a fast wrong answer proves nothing.

The load generator reports sustained req/s plus client-side p50/p99
latency for both tiers.  Refreshing the checked-in machine-readable
``BENCH_SERVING.json`` snapshot is **opt-in** — set
``REPRO_BENCH_WRITE=1`` on a quiet machine — and only happens when the
floors hold, so the snapshot can never record a regression as the new
normal.
"""

import json
import os
import platform
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.data.preprocessing import StandardScaler
from repro.data.synthetic import make_anomaly_dataset
from repro.detectors.registry import make_detector
from repro.serving import ModelStore, ScoringFleet, ScoringService, save_model

SNAPSHOT = Path(__file__).resolve().parent.parent / "BENCH_SERVING.json"

N_MODELS = 16           # > CACHE_SIZE: the single service must thrash
CACHE_SIZE = 6          # per process; covers every 4-worker shard (max 5)
N_WORKERS = 4
N_THREADS = 8
REQUESTS_PER_THREAD = 40
ROWS_PER_REQUEST = 4
MIN_SPEEDUP = 2.0

FLEET_OPTS = dict(cache_size=CACHE_SIZE, heartbeat_interval=0.1,
                  monitor_interval=0.25, start_timeout=120.0)


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    """``N_MODELS`` fitted HBOS models (load cost >> score cost)."""
    root = tmp_path_factory.mktemp("scale-store")
    ds = make_anomaly_dataset("local", n_inliers=360, n_anomalies=40,
                              n_features=16, random_state=0)
    X = StandardScaler().fit_transform(ds.X)
    for i in range(N_MODELS):
        save_model(make_detector("HBOS", random_state=i).fit(X),
                   root / f"m{i:02d}", data=X)
    return ModelStore(root), X


def _drive(service, ids, X) -> dict:
    """Mixed-model load: each thread round-robins over every model.

    Thread ``t`` starts at model offset ``t``, so at any instant the
    in-flight requests span many distinct models — the access pattern an
    LRU of ``CACHE_SIZE < N_MODELS`` cannot serve without reloading.
    """
    errors = []
    latencies = []
    scores = {}
    lock = threading.Lock()
    barrier = threading.Barrier(N_THREADS)

    def worker(thread_idx):
        barrier.wait()
        for j in range(REQUESTS_PER_THREAD):
            model_id = ids[(thread_idx + j) % len(ids)]
            begin = time.perf_counter()
            try:
                result = service.score(model_id, X[:ROWS_PER_REQUEST])
            except Exception as exc:  # pragma: no cover - fails the guard
                errors.append(exc)
                return
            took = time.perf_counter() - begin
            with lock:
                latencies.append(took)
                scores[(model_id, thread_idx, j)] = result

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(N_THREADS)]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    assert not errors, f"scoring failed under load: {errors[:1]}"
    n = N_THREADS * REQUESTS_PER_THREAD
    assert len(scores) == n
    ordered = sorted(latencies)
    return {
        "elapsed_s": round(elapsed, 4),
        "req_per_s": round(n / elapsed, 1),
        "p50_ms": round(1e3 * ordered[n // 2], 3),
        "p99_ms": round(1e3 * ordered[int(n * 0.99)], 3),
        "scores": scores,
    }


def test_fleet_throughput_scales(store):
    store, X = store
    ids = store.ids()
    expected = {model_id: store.load(model_id).score_samples(
        X[:ROWS_PER_REQUEST]) for model_id in ids}

    with ScoringService(store, cache_size=CACHE_SIZE) as single:
        _drive(single, ids, X)              # warm-up: fill the LRU
        single_run = _drive(single, ids, X)
        single_stats = single.stats()
    with ScoringFleet(store, n_workers=N_WORKERS, **FLEET_OPTS) as fleet:
        _drive(fleet, ids, X)               # warm-up: settle heartbeats
        fleet_run = _drive(fleet, ids, X)
        fleet_stats = fleet.stats()

    # Exactness first: both tiers must return the reference scores for
    # every single request.
    for run in (single_run, fleet_run):
        for (model_id, _, _), got in run.pop("scores").items():
            assert np.array_equal(got, expected[model_id]), model_id

    # The mechanism, not just the stopwatch: the single service thrashed
    # its LRU while the fleet's shards stayed warm.
    n = N_THREADS * REQUESTS_PER_THREAD
    assert single_stats["cache_misses"] > n / 2, single_stats
    worker_misses = sum(
        w.get("service", {}).get("cache_misses", 0)
        for w in fleet_stats["workers"].values())
    assert worker_misses <= N_MODELS * 2, fleet_stats["workers"]

    speedup = single_run["elapsed_s"] / fleet_run["elapsed_s"]
    print(f"\nserving scale: single {single_run['req_per_s']:.0f} req/s "
          f"(p99 {single_run['p99_ms']:.1f} ms) / fleet x{N_WORKERS} "
          f"{fleet_run['req_per_s']:.0f} req/s "
          f"(p99 {fleet_run['p99_ms']:.1f} ms) = {speedup:.2f}x")
    assert speedup >= MIN_SPEEDUP, (
        f"4-worker fleet only {speedup:.2f}x faster than a single "
        f"service under mixed-model load (floor {MIN_SPEEDUP}x): shard "
        f"warm-start or cache sizing has regressed"
    )

    _maybe_write_snapshot(single_run, fleet_run, speedup)


def _maybe_write_snapshot(single_run, fleet_run, speedup) -> None:
    # Opt-in (timings drift run to run), and only after the floors held
    # above — the snapshot must never normalise a regression.
    if os.environ.get("REPRO_BENCH_WRITE", "") != "1":
        print(f"{SNAPSHOT.name} left untouched "
              f"(set REPRO_BENCH_WRITE=1 to refresh the snapshot)")
        return
    snapshot = {
        "benchmark": "serving scale: 4-worker fleet vs single service",
        "note": "one-core box: the fleet wins on aggregate warm cache "
                "capacity under mixed-model load, not CPU parallelism",
        "config": {"n_models": N_MODELS, "cache_size": CACHE_SIZE,
                   "n_workers": N_WORKERS, "threads": N_THREADS,
                   "requests_per_thread": REQUESTS_PER_THREAD,
                   "rows_per_request": ROWS_PER_REQUEST},
        "env": {"python": platform.python_version(),
                "numpy": np.__version__,
                "cpu_count": os.cpu_count()},
        "single": single_run,
        "fleet": fleet_run,
        "speedup": round(speedup, 2),
        "floor": MIN_SPEEDUP,
    }
    SNAPSHOT.write_text(json.dumps(snapshot, indent=1) + "\n")
    print(f"wrote {SNAPSHOT}")
