"""Fig 5: error correction on the four synthetic anomaly types.

Paper shape: UADB improves the best-matching UAD models on all 8
model-anomaly-type pairs, with an average correction rate around 39% and a
maximum of 86% (IForest on clustered anomalies).
"""

import numpy as np

from benchmarks.conftest import report
from repro.experiments.figures import fig5_synthetic_types
from repro.experiments.reporting import format_fig5


def test_fig5_synthetic_types(benchmark):
    records = benchmark.pedantic(
        fig5_synthetic_types,
        kwargs={"n_iterations": 10, "seed": 0},
        rounds=1, iterations=1)
    report(format_fig5(records))

    assert len(records) == 8
    # The booster must not increase errors on average across the 8 pairs.
    teacher_total = sum(r["teacher_errors"] for r in records)
    booster_total = sum(r["booster_errors"] for r in records)
    assert booster_total <= teacher_total
    # And booster AUC must beat teacher AUC on a majority of pairs.
    wins = sum(r["booster_auc"] >= r["teacher_auc"] - 1e-9 for r in records)
    assert wins >= 4
    # Mean correction rate is positive.
    assert np.mean([r["correction_rate"] for r in records]) > 0.0
