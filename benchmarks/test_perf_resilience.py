"""Resilience-layer perf guards: the happy path must stay free.

Two promises worth pinning:

1. **Happy-path overhead.**  Wiring a RetryPolicy + per-worker circuit
   breakers + a default deadline into the fleet must cost (almost)
   nothing when nothing fails — the policy machinery sits outside the
   scoring hot path until an error actually occurs.  Guard: a
   policy-equipped fleet is within ``MAX_OVERHEAD`` of the bare fleet on
   the same sequential workload (min-of-runs on both sides, so scheduler
   noise cancels instead of flaking the ratio).
2. **Crash recovery time.**  After a SIGKILL, the supervisor + retry
   loop must produce the next exact score within ``MAX_RECOVERY_S`` —
   resilience that takes a minute is an outage with better marketing.

Refreshing the checked-in ``BENCH_RESILIENCE.json`` snapshot is opt-in
(``REPRO_BENCH_WRITE=1``) and only happens when the floors hold, so the
snapshot can never record a regression as the new normal.
"""

import json
import os
import platform
import signal
import time
from pathlib import Path

import numpy as np
import pytest

from repro.data.preprocessing import StandardScaler
from repro.data.synthetic import make_anomaly_dataset
from repro.detectors.registry import make_detector
from repro.resilience import CircuitBreaker, RetryPolicy
from repro.serving import ModelStore, ScoringFleet, save_model

SNAPSHOT = Path(__file__).resolve().parent.parent / "BENCH_RESILIENCE.json"

N_MODELS = 4
N_WORKERS = 2
REQUESTS = 400          # sequential scoring calls per measured run
ROWS = 4
RUNS = 5                # min-of-runs on both sides
MAX_OVERHEAD = 1.05     # policy-equipped fleet <= 5% slower when healthy
MAX_RECOVERY_S = 30.0   # SIGKILL -> next exact score

FAST = dict(heartbeat_interval=0.1, monitor_interval=0.1,
            start_timeout=120.0)

POLICY_OPTS = dict(
    retry_policy=RetryPolicy(max_attempts=6, base_delay=0.05, seed=0),
    breaker=CircuitBreaker(failure_threshold=5, reset_timeout=2.0),
    deadline=60.0,
)


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    root = tmp_path_factory.mktemp("resilience-store")
    ds = make_anomaly_dataset("local", n_inliers=360, n_anomalies=40,
                              n_features=16, random_state=0)
    X = StandardScaler().fit_transform(ds.X)
    for i in range(N_MODELS):
        save_model(make_detector("HBOS", random_state=i).fit(X),
                   root / f"m{i:02d}", data=X)
    return ModelStore(root), X


def _drive(fleet, ids, X) -> float:
    """One timed sequential pass: REQUESTS scores, round-robin models."""
    start = time.perf_counter()
    for j in range(REQUESTS):
        fleet.score(ids[j % len(ids)], X[:ROWS])
    return time.perf_counter() - start


def test_happy_path_overhead_is_bounded(store):
    store, X = store
    ids = store.ids()

    # Both fleets run side by side and the timed passes interleave
    # (bare, policy, bare, policy, ...), so slow machine drift hits both
    # sides equally instead of skewing whichever fleet ran second.
    with ScoringFleet(store, n_workers=N_WORKERS, **FAST) as bare, \
            ScoringFleet(store, n_workers=N_WORKERS, **POLICY_OPTS,
                         **FAST) as guarded:
        _drive(bare, ids, X)     # warm-up: fill caches, settle
        _drive(guarded, ids, X)  # heartbeats on both sides
        bare_runs, guarded_runs = [], []
        for _ in range(RUNS):
            bare_runs.append(_drive(bare, ids, X))
            guarded_runs.append(_drive(guarded, ids, X))
        bare_s = min(bare_runs)
        guarded_s = min(guarded_runs)
        stats = guarded.stats()

    # The policy run must have exercised the policy plumbing (breakers
    # recorded a success per request) without a single retry.
    assert stats["retries"] == 0
    breakers = stats["resilience"]["breakers"]["workers"]
    assert sum(b["successes"] for b in breakers.values()) >= REQUESTS

    overhead = guarded_s / bare_s
    print(f"\nresilience overhead: bare {bare_s:.3f}s vs policy "
          f"{guarded_s:.3f}s for {REQUESTS} requests = x{overhead:.3f}")
    assert overhead <= MAX_OVERHEAD, (
        f"retry/breaker/deadline plumbing costs {overhead:.3f}x on the "
        f"happy path (cap {MAX_OVERHEAD}x): policy checks have crept "
        f"into the hot loop"
    )
    _maybe_write_snapshot("overhead", {
        "bare_s": round(bare_s, 4), "policy_s": round(guarded_s, 4),
        "overhead": round(overhead, 4), "cap": MAX_OVERHEAD,
        "requests": REQUESTS})


def test_sigkill_recovery_time_is_bounded(store):
    store, X = store
    ids = store.ids()
    policy = RetryPolicy(max_attempts=40, base_delay=0.05, max_delay=1.0,
                         seed=0)
    with ScoringFleet(store, n_workers=N_WORKERS, retry_policy=policy,
                      **FAST) as fleet:
        expected = {mid: fleet.score(mid, X[:ROWS]) for mid in ids}
        stats = fleet.stats()
        victim_model = ids[0]
        victim = stats["sharding"]["assignments"][victim_model]
        os.kill(stats["workers"][victim]["pid"], signal.SIGKILL)

        start = time.perf_counter()
        got = fleet.score(victim_model, X[:ROWS])
        recovery_s = time.perf_counter() - start

    assert np.array_equal(got, expected[victim_model])
    print(f"\nSIGKILL -> next exact score in {recovery_s:.2f}s "
          f"(cap {MAX_RECOVERY_S:.0f}s)")
    assert recovery_s <= MAX_RECOVERY_S, (
        f"crash recovery took {recovery_s:.1f}s (cap {MAX_RECOVERY_S}s): "
        f"supervision or retry pacing has regressed"
    )
    _maybe_write_snapshot("recovery", {
        "recovery_s": round(recovery_s, 3), "cap_s": MAX_RECOVERY_S})


_RESULTS: dict = {}


def _maybe_write_snapshot(section: str, payload: dict) -> None:
    _RESULTS[section] = payload
    if os.environ.get("REPRO_BENCH_WRITE", "") != "1":
        print(f"{SNAPSHOT.name} left untouched "
              f"(set REPRO_BENCH_WRITE=1 to refresh the snapshot)")
        return
    if set(_RESULTS) < {"overhead", "recovery"}:
        return  # write once, after both guards held
    snapshot = {
        "benchmark": "resilience layer: happy-path overhead and "
                     "SIGKILL recovery",
        "config": {"n_models": N_MODELS, "n_workers": N_WORKERS,
                   "requests": REQUESTS, "rows": ROWS, "runs": RUNS},
        "env": {"python": platform.python_version(),
                "numpy": np.__version__,
                "cpu_count": os.cpu_count()},
        **_RESULTS,
    }
    SNAPSHOT.write_text(json.dumps(snapshot, indent=1) + "\n")
    print(f"wrote {SNAPSHOT}")
