"""Wall-clock guard: the batched engine must beat the sequential engine.

The batched fold-parallel engine exists to remove Python/numpy dispatch
overhead from booster training, so its advantage is largest exactly where
that overhead dominates — many small Adam steps.  The guard uses such a
configuration (3 folds x 10 UADB iterations of a narrow MLP with small
minibatches, ~2.9x measured on a 1-core container) and asserts a 2x
floor so a regression that silently reroutes the hot path to the
per-fold fallback fails loudly.  Both engines produce bit-identical
scores (asserted here too — a guard that compares the wrong computation
proves nothing).
"""

import time

import numpy as np

from repro.core.booster import UADBooster

# Many tiny steps: 192 samples -> 128-row folds, batch 16 -> 8 uniform
# steps per epoch (no ragged tails), hidden width 32 keeps each GEMM far
# below BLAS-bound sizes.
N, D = 192, 8
CONFIG = dict(n_iterations=10, n_folds=3, hidden=32, batch_size=16,
              record_history=False)
MIN_SPEEDUP = 2.0


def _fit_time(engine: str, X, source) -> tuple:
    best = np.inf
    scores = None
    for _ in range(3):  # best-of-3 damps scheduler noise
        booster = UADBooster(engine=engine, random_state=7, **CONFIG)
        start = time.perf_counter()
        booster.fit(X, source)
        best = min(best, time.perf_counter() - start)
        scores = booster.scores_
    return best, scores


def test_batched_engine_speedup():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(N, D))
    source = rng.uniform(size=N)

    t_seq, s_seq = _fit_time("sequential", X, source)
    t_bat, s_bat = _fit_time("batched", X, source)

    assert np.array_equal(s_seq, s_bat)
    speedup = t_seq / t_bat
    print(f"\nengine speedup: sequential {t_seq:.3f}s / "
          f"batched {t_bat:.3f}s = {speedup:.2f}x")
    assert speedup >= MIN_SPEEDUP, (
        f"batched engine only {speedup:.2f}x faster than sequential "
        f"(floor {MIN_SPEEDUP}x): the fold-parallel hot path has regressed"
    )
