"""Ablation: BCE vs MSE distillation loss (DESIGN.md calibration note 1).

With min-max-scaled teacher scores compressed near 0 (low-contamination
data), MSE through a sigmoid stalls at the constant-mean prediction while
BCE tracks the teacher within a few hundred steps.  This bench quantifies
the difference in teacher-fit quality at a fixed optimisation budget.
"""

import numpy as np

from benchmarks.conftest import report
from repro.core.ensemble import FoldEnsemble
from repro.data.preprocessing import StandardScaler
from repro.data.registry import load_dataset
from repro.detectors.registry import make_detector
from repro.experiments.reporting import format_table

DATASETS = ("thyroid", "letter", "cardio")


def _fit_quality(loss: str, dataset_name: str) -> float:
    ds = load_dataset(dataset_name, max_samples=400, max_features=24)
    X = StandardScaler().fit_transform(ds.X)
    teacher = make_detector("LOF", random_state=0).fit(X).fit_scores()
    # A deliberately modest budget: the MSE stall is an early-training
    # pathology, so the contrast is sharpest before either loss converges.
    ens = FoldEnsemble(loss=loss, first_round_steps=150,
                       min_steps_per_round=50,
                       random_state=0).initialize(X)
    for _ in range(2):
        ens.train_round(X, teacher)
    student = ens.predict(X)
    return float(np.corrcoef(student, teacher)[0, 1])


def test_ablation_bce_vs_mse(benchmark):
    def run():
        return {ds: {loss: _fit_quality(loss, ds)
                     for loss in ("bce", "mse")}
                for ds in DATASETS}

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[ds, f"{cells['bce']:.3f}", f"{cells['mse']:.3f}"]
            for ds, cells in out.items()]
    report(format_table(
        ["Dataset", "corr(student, teacher) BCE", "... MSE"], rows,
        title="[Ablation] distillation-loss choice (teacher = LOF)"))

    # BCE must fit at least as well on every dataset and strictly better
    # on at least one (the compressed-target regime).
    assert all(cells["bce"] >= cells["mse"] - 0.05
               for cells in out.values())
    assert any(cells["bce"] > cells["mse"] + 0.05
               for cells in out.values())
