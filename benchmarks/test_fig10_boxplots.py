"""Fig 10: boxplots of 14 teacher models vs their UADB boosters.

Paper shape: removing error correction (i.e. the teacher itself) degrades
the score distribution across datasets; boosters sit at or above teachers.
"""

from benchmarks.conftest import report
from repro.experiments.reporting import format_boxplots
from repro.experiments.tables import boxplot_stats


def test_fig10_boxplots(benchmark, main_sweep):
    stats = benchmark.pedantic(
        boxplot_stats, args=(main_sweep,), rounds=1, iterations=1)
    report(format_boxplots(stats))

    for detector, by_metric in stats.items():
        for metric in ("auc", "ap"):
            source = by_metric[metric]["source"]
            booster = by_metric[metric]["booster"]
            # Valid five-number summaries.
            assert source["min"] <= source["median"] <= source["max"]
            assert booster["min"] <= booster["median"] <= booster["max"]
