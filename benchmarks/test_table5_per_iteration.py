"""Table V: per-iteration booster performance on example datasets.

Paper shape: for representative teachers (IForest, HBOS, LOF, KNN) the
booster's AUCROC/AP on showcase datasets grows across iterations 2 -> 10
and ends above the teacher.
"""

from benchmarks.conftest import report
from repro.experiments.reporting import format_table5
from repro.experiments.tables import table5_per_iteration

DETECTORS = ("IForest", "HBOS", "LOF", "KNN")
DATASETS = ("vowels", "satellite", "optdigits", "PageBlocks", "thyroid")


def test_table5_per_iteration(benchmark):
    table = benchmark.pedantic(
        table5_per_iteration,
        kwargs={"detectors": DETECTORS, "datasets": DATASETS,
                "n_iterations": 10, "max_samples": 400, "max_features": 24},
        rounds=1, iterations=1)
    report(format_table5(table))

    improvements = []
    for det, by_dataset in table.items():
        for ds, cell in by_dataset.items():
            improvements.append(cell["auc"]["improvement"])
            # Iterations are recorded at 2, 4, 6, 8, 10.
            assert len(cell["auc"]["iterations"]) == 5
    # Booster ends above the teacher on a fair share of showcase cells.
    wins = sum(i > -0.01 for i in improvements)
    assert wins >= len(improvements) // 2
