"""Fig 9: development of TP/TN/FP/FN mean ranks across UADB iterations.

Paper shape (LOF on landsat / optdigits / satellite, T = 20): TP keeps a
high rank while FP sinks; FN rises relative to TN — the rank gap between
correct and incorrect teacher decisions widens over iterations.
"""

from benchmarks.conftest import report
from repro.experiments.figures import fig9_ranking_development
from repro.experiments.reporting import format_table

DATASETS = ("landsat", "optdigits", "satellite")


def test_fig9_ranking_development(benchmark):
    out = benchmark.pedantic(
        fig9_ranking_development,
        kwargs={"dataset_names": DATASETS, "detector": "LOF",
                "n_iterations": 20, "max_samples": 400, "max_features": 24},
        rounds=1, iterations=1)

    rows = []
    for name, cell in out.items():
        for case in ("TP", "FP", "FN", "TN"):
            series = cell["mean_ranks"][case]
            first = series[0]
            last = series[-1]
            rows.append([name, case, str(cell["case_counts"][case]),
                         f"{first:.1f}" if first == first else "-",
                         f"{last:.1f}" if last == last else "-"])
        rows.append([name, "AUC", "-", f"{cell['auc'][0]:.3f}",
                     f"{cell['auc'][-1]:.3f}"])
    report(format_table(
        ["Dataset", "Case", "Count", "Iter 1", "Iter 20"], rows,
        title="[Fig 9] mean rank development (LOF booster, T=20)"))

    for name, cell in out.items():
        ranks = cell["mean_ranks"]
        # TP must outrank TN throughout (right decisions preserved).
        if ranks["TP"][-1] == ranks["TP"][-1] and \
                ranks["TN"][-1] == ranks["TN"][-1]:
            assert ranks["TP"][-1] > ranks["TN"][-1]
        assert len(cell["auc"]) == 20
