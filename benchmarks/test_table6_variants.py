"""Table VI: UADB vs the four alternative booster frameworks.

Paper shape: UADB is the best booster strategy on average; the Discrepancy
boosters (which score by teacher-student deviation) are clearly worst; the
Self booster is the strongest alternative.
"""

import numpy as np

from benchmarks.conftest import FULL, report
from repro.experiments.reporting import format_table6
from repro.experiments.tables import table6_variants

# The variant ablation multiplies every cell by five boosters, so it runs
# on a narrower grid by default.
DETECTORS = ("IForest", "HBOS", "LOF", "KNN", "GMM", "DeepSVDD")
DATASETS = ("cardio", "fault", "glass", "satellite", "thyroid", "vowels")


def test_table6_variants(benchmark):
    table = benchmark.pedantic(
        table6_variants,
        kwargs={"detectors": DETECTORS, "datasets": DATASETS,
                "seeds": (0,), "n_iterations": 5 if not FULL else 10,
                "max_samples": 400, "max_features": 24},
        rounds=1, iterations=1)
    report(format_table6(table))

    def avg(strategy, metric):
        return float(np.mean([table[strategy][d][metric]
                              for d in DETECTORS]))

    for metric in ("auc", "ap"):
        uadb = avg("uadb", metric)
        discrepancy = avg("discrepancy", metric)
        discrepancy_star = avg("discrepancy_star", metric)
        naive = avg("naive", metric)
        # Paper shape: discrepancy-based scoring is far worse than UADB.
        assert uadb > discrepancy, metric
        assert uadb > discrepancy_star, metric
        # UADB is at least competitive with static distillation.
        assert uadb >= naive - 0.02, metric
