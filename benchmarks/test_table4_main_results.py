"""Table IV: UADB improvement over 14 source UAD models.

Paper shape: UADB's booster improves the average AUCROC and AP of every
source model, with the largest gains for the weakest models (LOF, COF, SOD,
KNN, DeepSVDD) and statistically significant Wilcoxon p-values.
"""

from benchmarks.conftest import report
from repro.experiments.reporting import format_table4
from repro.experiments.tables import table4_summary


def test_table4_main_results(benchmark, main_sweep):
    summary = benchmark.pedantic(
        table4_summary, args=(main_sweep,), rounds=1, iterations=1)
    report(format_table4(summary))

    # Sanity of the reproduction: every model summary is complete and the
    # booster stays within a small tolerance of (or above) the source on
    # average — knowledge transfer must not destroy the teacher.
    for detector, row in summary.items():
        for metric in ("auc", "ap"):
            m = row[metric]
            assert m["n_datasets"] >= 10
            assert m["booster"] >= m["original"] - 0.05, (
                f"{detector}/{metric}: booster collapsed"
            )
    # Shape check: a majority of models improve on AP (the metric where the
    # paper's gains are clearest).
    improved_ap = sum(row["ap"]["improvement"] > 0
                      for row in summary.values())
    assert improved_ap >= len(summary) // 2
