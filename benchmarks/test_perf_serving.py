"""Throughput guard: micro-batched scoring must beat per-request scoring.

The scoring service exists because model inference here is a handful of
small matrix products — per-call overhead (input validation, feature
standardisation, per-layer dispatch, cache release) dominates single-row
latency.  Micro-batching amortises that overhead across every request
queued behind the scorer, so a concurrent workload of small requests must
sustain a multiple of the naive one-predict-per-request throughput.

The guard drives both service modes with the same workload (many threads
x many single-row requests against a saved UADB booster) and asserts the
micro-batched mode is >= 2x faster end to end (~5x measured on a
1-core container).  Scores are compared too — a fast wrong answer proves
nothing — and the coalescing statistics must show that real batching
happened (mean batch size > 1), so the guard cannot pass by accident
through timing noise alone.
"""

import threading
import time

import numpy as np

from repro.core.booster import UADBooster
from repro.serving import ScoringService, save_model

N, D = 256, 8
N_THREADS = 16
REQUESTS_PER_THREAD = 75
MIN_SPEEDUP = 2.0

BOOSTER = dict(n_iterations=2, n_folds=3, hidden=128, batch_size=64,
               record_history=False)


def _saved_booster(tmp_path):
    rng = np.random.default_rng(0)
    X = rng.normal(size=(N, D))
    booster = UADBooster(random_state=7, **BOOSTER)
    booster.fit(X, rng.uniform(size=N))
    path = save_model(booster, tmp_path / "booster", data=X)
    return path, X


def _drive(service, model_id, X) -> tuple:
    """Fire the workload; returns (elapsed_seconds, scores_by_request)."""
    results = {}
    errors = []
    barrier = threading.Barrier(N_THREADS)

    def worker(thread_idx):
        barrier.wait()
        for j in range(REQUESTS_PER_THREAD):
            row = (thread_idx * REQUESTS_PER_THREAD + j) % N
            try:
                scores = service.score(model_id, X[row:row + 1])
            except Exception as exc:  # pragma: no cover - fail the guard
                errors.append(exc)
                return
            results[(thread_idx, j)] = (row, float(scores[0]))

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(N_THREADS)]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    assert not errors, f"scoring failed: {errors[:1]}"
    assert len(results) == N_THREADS * REQUESTS_PER_THREAD
    return elapsed, results


def test_micro_batching_throughput(tmp_path):
    path, X = _saved_booster(tmp_path)
    model_id = path.name

    with ScoringService(path, micro_batch=False) as naive:
        t_naive, r_naive = _drive(naive, model_id, X)
        naive_stats = naive.stats()
    with ScoringService(path, micro_batch=True) as micro:
        t_micro, r_micro = _drive(micro, model_id, X)
        micro_stats = micro.stats()

    # Same answers: every request's score must match the naive mode's.
    # Tolerance is a few float32 ulps — BLAS may pick different kernels
    # for a 1-row and a coalesced multi-row GEMM of the same model.
    for key, (row, score) in r_naive.items():
        row_micro, score_micro = r_micro[key]
        assert row_micro == row
        assert abs(score - score_micro) < 1e-5

    # Real coalescing happened: fewer predict calls than requests.
    n_requests = N_THREADS * REQUESTS_PER_THREAD
    assert naive_stats["batches"] == n_requests
    assert micro_stats["batches"] < n_requests
    assert micro_stats["mean_batch_requests"] > 1.0

    speedup = t_naive / t_micro
    throughput = n_requests / t_micro
    print(f"\nserving throughput: naive {t_naive:.3f}s / "
          f"micro-batched {t_micro:.3f}s = {speedup:.2f}x "
          f"({throughput:.0f} req/s, mean batch "
          f"{micro_stats['mean_batch_requests']:.1f} requests)")
    assert speedup >= MIN_SPEEDUP, (
        f"micro-batched scoring only {speedup:.2f}x faster than "
        f"per-request scoring (floor {MIN_SPEEDUP}x): request coalescing "
        f"has regressed"
    )
